/// \file stack.hpp
/// \brief Layer-stack builder: declares a vertical pile of full-area layers
/// (the Fig. 7 package cross-section) and returns them as Scene blocks.
#pragma once

#include <string>
#include <vector>

#include "geometry/block.hpp"

namespace photherm::geometry {

/// One layer of a vertical stack.
struct LayerSpec {
  std::string name;
  std::string material;   ///< material library name
  double thickness;       ///< [m]
  BlockKind kind = BlockKind::kLayer;
};

/// Builds full-area layers bottom-up starting at `z0` over the footprint
/// [0, width] x [0, depth]. Returns the z coordinate of each layer interface
/// through `interfaces` (size = layers + 1) when non-null.
class LayerStackBuilder {
 public:
  LayerStackBuilder(double width, double depth, double z0 = 0.0);

  LayerStackBuilder& add_layer(const LayerSpec& layer);

  /// Current top z coordinate.
  double top() const { return z_; }

  /// z range [bottom, top] of the layer added at position `index`.
  std::pair<double, double> layer_range(std::size_t index) const;

  /// Emit all layers into `scene`.
  void emit(Scene& scene) const;

  std::size_t layer_count() const { return layers_.size(); }

 private:
  double width_;
  double depth_;
  double z0_;
  double z_;
  std::vector<LayerSpec> layers_;
  std::vector<double> interfaces_;
};

}  // namespace photherm::geometry
