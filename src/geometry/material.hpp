/// \file material.hpp
/// \brief Thermal materials. Conductivity, density and specific heat feed
/// the finite-volume assembler; the built-in library covers every layer of
/// the paper's Fig. 7 package stack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace photherm::geometry {

/// Opaque material handle (index into a MaterialLibrary).
struct MaterialId {
  std::uint16_t index = 0;
  bool operator==(const MaterialId&) const = default;
};

/// Homogeneous isotropic material.
struct Material {
  std::string name;
  double conductivity;    ///< [W/(m*K)] at the reference temperature
  double density;         ///< [kg/m^3]
  double specific_heat;   ///< [J/(kg*K)]

  /// Power-law temperature dependence: k(T) = k_ref (T_ref/T)^exponent
  /// with temperatures in kelvin (silicon: ~1.3). 0 = constant (default).
  double conductivity_exponent = 0.0;
  double reference_temperature = 300.0;  ///< [K]

  /// Conductivity at temperature `t_celsius` [W/(m*K)].
  double conductivity_at(double t_celsius) const;
};

/// Registry of materials; ids are stable for the lifetime of the library
/// object. A default-constructed library is pre-populated with the standard
/// set (see standard_materials()).
class MaterialLibrary {
 public:
  /// Creates a library pre-filled with the standard material set.
  MaterialLibrary();

  /// Creates an empty library.
  static MaterialLibrary empty();

  /// Register a material; name must be unique. Returns its id.
  MaterialId add(Material material);

  /// Lookup by name; throws photherm::SpecError when absent.
  MaterialId id_of(const std::string& name) const;

  /// True when a material with this name exists.
  bool contains(const std::string& name) const;

  const Material& get(MaterialId id) const;
  const Material& get(const std::string& name) const { return get(id_of(name)); }

  std::size_t size() const { return materials_.size(); }

 private:
  explicit MaterialLibrary(bool populate);
  std::vector<Material> materials_;
};

/// Names of the built-in materials (silicon, silicon_dioxide, copper,
/// aluminum, fr4, steel, epoxy, solder, tim, inp, ingaasp, air, underfill,
/// silicon_interposer, beol, optical_matrix, bonding).
std::vector<std::string> standard_material_names();

}  // namespace photherm::geometry
