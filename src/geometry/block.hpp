/// \file block.hpp
/// \brief Rectangular blocks: the atoms of the system specification. A
/// Scene is an ordered list of blocks; later blocks override earlier ones
/// where they overlap (paint order), which lets a die layer be declared as
/// one slab and then have devices "carved" into it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geometry/material.hpp"
#include "geometry/vec.hpp"

namespace photherm::geometry {

/// Category tag used by the thermal post-processing to find regions
/// (e.g. "average temperature of all MRs of ONI 3").
enum class BlockKind {
  kPackage,     ///< passive package structure (lid, substrate, sink, ...)
  kLayer,       ///< a full die layer slab
  kHeatSource,  ///< core/cache/router power block in the BEOL
  kVcsel,       ///< laser active volume
  kMicroRing,   ///< ring resonator footprint
  kHeater,      ///< MR heater resistance
  kPhotodetector,
  kTsv,
  kWaveguide,
  kDriver,      ///< CMOS driver / receiver
  kOther,
};

std::string to_string(BlockKind kind);

/// One axis-aligned block with a material and an optional dissipated power.
struct Block {
  std::string name;
  Box3 box;
  MaterialId material;
  double power = 0.0;     ///< total dissipated power [W], uniform density
  BlockKind kind = BlockKind::kOther;
  int group = -1;         ///< grouping id (e.g. ONI index); -1 = none

  /// Power density [W/m^3].
  double power_density() const { return power / box.volume(); }
};

/// Ordered collection of blocks. Paint-order semantics: the *last* block
/// containing a point defines its material; powers are additive (each block
/// with power injects its own power over its own volume).
class Scene {
 public:
  explicit Scene(MaterialLibrary materials = MaterialLibrary());

  const MaterialLibrary& materials() const { return materials_; }
  MaterialLibrary& materials() { return materials_; }

  /// Append a block (non-positive-volume boxes rejected by Box3 already;
  /// negative power rejected here).
  void add(Block block);

  const std::vector<Block>& blocks() const { return blocks_; }
  std::size_t size() const { return blocks_.size(); }
  const Block& operator[](std::size_t i) const { return blocks_[i]; }

  /// Bounding box of all blocks; throws when empty.
  Box3 bounding_box() const;

  /// Total injected power [W].
  double total_power() const;

  /// Material at a point (paint order); falls back to `background` when no
  /// block contains the point.
  MaterialId material_at(const Vec3& p, MaterialId background) const;

  /// Blocks matching a kind (and optionally a group id).
  std::vector<const Block*> find(BlockKind kind, std::optional<int> group = std::nullopt) const;

  /// Block by exact name; throws SpecError when absent.
  const Block& by_name(const std::string& name) const;

 private:
  MaterialLibrary materials_;
  std::vector<Block> blocks_;
};

}  // namespace photherm::geometry
