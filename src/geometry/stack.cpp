#include "geometry/stack.hpp"

#include "util/error.hpp"

namespace photherm::geometry {

LayerStackBuilder::LayerStackBuilder(double width, double depth, double z0)
    : width_(width), depth_(depth), z0_(z0), z_(z0) {
  PH_REQUIRE(width > 0.0 && depth > 0.0, "stack footprint must be positive");
  interfaces_.push_back(z0);
}

LayerStackBuilder& LayerStackBuilder::add_layer(const LayerSpec& layer) {
  PH_REQUIRE(layer.thickness > 0.0, "layer thickness must be positive: " + layer.name);
  layers_.push_back(layer);
  z_ += layer.thickness;
  interfaces_.push_back(z_);
  return *this;
}

std::pair<double, double> LayerStackBuilder::layer_range(std::size_t index) const {
  PH_REQUIRE(index < layers_.size(), "layer index out of range");
  return {interfaces_[index], interfaces_[index + 1]};
}

void LayerStackBuilder::emit(Scene& scene) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const LayerSpec& layer = layers_[i];
    Block block;
    block.name = layer.name;
    block.box = Box3::make({0.0, 0.0, interfaces_[i]}, {width_, depth_, interfaces_[i + 1]});
    block.material = scene.materials().id_of(layer.material);
    block.kind = layer.kind;
    scene.add(std::move(block));
  }
}

}  // namespace photherm::geometry
