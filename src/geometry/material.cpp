#include "geometry/material.hpp"

#include <cmath>

#include "util/error.hpp"

namespace photherm::geometry {

namespace {
// Standard thermal properties at ~320 K. BEOL is a homogenised Cu/low-k mix
// (the paper models the back-end-of-line as a single 10-15 um layer); TIM is
// a filled thermal paste.
const Material kStandard[] = {
    {"silicon", 130.0, 2330.0, 712.0},
    {"silicon_dioxide", 1.38, 2200.0, 730.0},
    {"copper", 390.0, 8960.0, 385.0},
    {"aluminum", 237.0, 2700.0, 900.0},
    {"fr4", 0.35, 1850.0, 1100.0},
    {"steel", 45.0, 7850.0, 490.0},
    {"epoxy", 1.5, 1200.0, 1000.0},  // filled die-attach epoxy
    {"solder", 50.0, 8400.0, 180.0},
    {"tim", 4.0, 2300.0, 800.0},
    {"inp", 68.0, 4810.0, 310.0},
    {"ingaasp", 5.0, 5000.0, 330.0},
    {"air", 0.026, 1.2, 1005.0},
    {"underfill", 0.9, 1700.0, 950.0},
    {"silicon_interposer", 120.0, 2330.0, 712.0},
    {"beol", 2.25, 4000.0, 600.0},
    // Homogenised optical device layer: silicon photonic film + SiO2
    // cladding + metal heaters (lateral heat spreading dominated by the
    // crystalline silicon film).
    {"optical_matrix", 40.0, 2300.0, 720.0},
    // Oxide bonding layer homogenised with its dense TSV/via field
    // (copper-via-rich hybrid bonding).
    {"bonding", 4.0, 2600.0, 700.0},
};
}  // namespace

double Material::conductivity_at(double t_celsius) const {
  if (conductivity_exponent == 0.0) {
    return conductivity;
  }
  const double t_kelvin = t_celsius + 273.15;
  PH_REQUIRE(t_kelvin > 0.0, "temperature below absolute zero");
  return conductivity * std::pow(reference_temperature / t_kelvin, conductivity_exponent);
}

MaterialLibrary::MaterialLibrary() : MaterialLibrary(true) {}

MaterialLibrary::MaterialLibrary(bool populate) {
  if (populate) {
    for (const Material& m : kStandard) {
      materials_.push_back(m);
    }
  }
}

MaterialLibrary MaterialLibrary::empty() { return MaterialLibrary(false); }

MaterialId MaterialLibrary::add(Material material) {
  PH_REQUIRE(!material.name.empty(), "material name must not be empty");
  PH_REQUIRE(material.conductivity > 0.0, "material conductivity must be positive");
  PH_REQUIRE(material.density > 0.0, "material density must be positive");
  PH_REQUIRE(material.specific_heat > 0.0, "material specific heat must be positive");
  PH_REQUIRE(!contains(material.name), "duplicate material name: " + material.name);
  materials_.push_back(std::move(material));
  return MaterialId{static_cast<std::uint16_t>(materials_.size() - 1)};
}

MaterialId MaterialLibrary::id_of(const std::string& name) const {
  for (std::size_t i = 0; i < materials_.size(); ++i) {
    if (materials_[i].name == name) {
      return MaterialId{static_cast<std::uint16_t>(i)};
    }
  }
  throw SpecError("unknown material: " + name);
}

bool MaterialLibrary::contains(const std::string& name) const {
  for (const auto& m : materials_) {
    if (m.name == name) {
      return true;
    }
  }
  return false;
}

const Material& MaterialLibrary::get(MaterialId id) const {
  PH_REQUIRE(id.index < materials_.size(), "material id out of range");
  return materials_[id.index];
}

std::vector<std::string> standard_material_names() {
  std::vector<std::string> names;
  for (const Material& m : kStandard) {
    names.push_back(m.name);
  }
  return names;
}

}  // namespace photherm::geometry
