#include "geometry/block.hpp"

#include "util/error.hpp"

namespace photherm::geometry {

std::string to_string(BlockKind kind) {
  switch (kind) {
    case BlockKind::kPackage:
      return "package";
    case BlockKind::kLayer:
      return "layer";
    case BlockKind::kHeatSource:
      return "heat_source";
    case BlockKind::kVcsel:
      return "vcsel";
    case BlockKind::kMicroRing:
      return "microring";
    case BlockKind::kHeater:
      return "heater";
    case BlockKind::kPhotodetector:
      return "photodetector";
    case BlockKind::kTsv:
      return "tsv";
    case BlockKind::kWaveguide:
      return "waveguide";
    case BlockKind::kDriver:
      return "driver";
    case BlockKind::kOther:
      return "other";
  }
  return "?";
}

Scene::Scene(MaterialLibrary materials) : materials_(std::move(materials)) {}

void Scene::add(Block block) {
  PH_REQUIRE(block.power >= 0.0, "block power must be non-negative: " + block.name);
  PH_REQUIRE(block.material.index < materials_.size(),
             "block references an unknown material: " + block.name);
  blocks_.push_back(std::move(block));
}

Box3 Scene::bounding_box() const {
  PH_REQUIRE(!blocks_.empty(), "bounding box of an empty scene");
  Box3 bb = blocks_.front().box;
  for (const Block& b : blocks_) {
    bb = bb.union_with(b.box);
  }
  return bb;
}

double Scene::total_power() const {
  double total = 0.0;
  for (const Block& b : blocks_) {
    total += b.power;
  }
  return total;
}

MaterialId Scene::material_at(const Vec3& p, MaterialId background) const {
  MaterialId result = background;
  for (const Block& b : blocks_) {
    if (b.box.contains(p)) {
      result = b.material;
    }
  }
  return result;
}

std::vector<const Block*> Scene::find(BlockKind kind, std::optional<int> group) const {
  std::vector<const Block*> out;
  for (const Block& b : blocks_) {
    if (b.kind == kind && (!group || b.group == *group)) {
      out.push_back(&b);
    }
  }
  return out;
}

const Block& Scene::by_name(const std::string& name) const {
  for (const Block& b : blocks_) {
    if (b.name == name) {
      return b;
    }
  }
  throw SpecError("no block named: " + name);
}

}  // namespace photherm::geometry
