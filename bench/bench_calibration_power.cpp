/// Reproduces the Sec. III-B calibration-cost discussion: per-ring
/// calibration power at Corona scale (~1.1e6 MRs -> >50 % of network
/// power), and the benefit of ONI clustering once the intra-interface
/// gradient is kept below 1 degC by the paper's design method.
#include <iostream>

#include "noc/calibration.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

int main() {
  using namespace photherm;
  const noc::CalibrationParams params;

  // --- Network-scale budget (Sec. III-B numbers). --------------------------
  {
    Table table({"network", "MR count", "typ. misalignment (nm)", "calibration power (W)"});
    struct Row {
      const char* name;
      std::size_t rings;
      double mis_nm;
    };
    for (const Row& row : {Row{"single ONI (4 wg x 4 rx)", 16, 0.5},
                           Row{"SCC ring case 3 (12 ONIs)", 192, 0.5},
                           Row{"Corona-scale crossbar [17]", 1'100'000, 1.0}}) {
      table.add_row({std::string(row.name), static_cast<double>(row.rings), row.mis_nm,
                     noc::network_calibration_power(row.rings, row.mis_nm * 1e-9, params)});
    }
    print_table(std::cout, "Per-ring calibration power (130/190 uW per nm, [17])", table);
    std::cout << "paper: for Corona (~1.1e6 MRs) calibration exceeds 50 % of total network "
                 "power\n\n";
  }

  // --- Clustering benefit vs intra-ONI gradient. ---------------------------
  // 12 ONIs x 16 rings; ONI-to-ONI offsets of a few degC plus an
  // intra-ONI spread that the MR heaters control at design time.
  {
    Table table({"intra-ONI gradient (degC)", "per-ring power (mW)", "clustered power (mW)",
                 "saving (%)", "worst residual (nm)", "residual < 0.05 nm"});
    Rng rng(42);
    std::vector<double> oni_offset(12);
    for (double& t : oni_offset) {
      t = rng.uniform(-3.0, 3.0);
    }
    for (double gradient : {0.2, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      std::vector<double> errors;
      std::vector<std::size_t> clusters;
      Rng ring_rng(7);
      for (std::size_t oni = 0; oni < 12; ++oni) {
        for (std::size_t r = 0; r < 16; ++r) {
          errors.push_back(oni_offset[oni] + ring_rng.uniform(-gradient / 2, gradient / 2));
          clusters.push_back(oni);
        }
      }
      const auto per_ring = noc::per_ring_plan(errors, params);
      const auto clustered = noc::clustered_plan(errors, clusters, params);
      table.add_row({gradient, per_ring.total_power * 1e3,
                     clustered.plan.total_power * 1e3,
                     100.0 * (1.0 - clustered.plan.total_power / per_ring.total_power),
                     clustered.worst_residual * 1e9,
                     std::string(clustered.worst_residual < 0.05e-9 ? "yes" : "NO")});
    }
    print_table(std::cout,
                "ONI-clustered calibration vs intra-ONI gradient (12 ONIs x 16 MRs)", table);
    std::cout << "clustering only stays accurate when the interface gradient is small -\n"
                 "the reason the methodology drives it below 1 degC (Sec. III-B / IV-C)\n";
  }
  return 0;
}
