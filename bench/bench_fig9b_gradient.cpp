/// Reproduces Fig. 9-b: intra-ONI gradient temperature vs MR heater power
/// Pheater (0..4 mW) for PVCSEL in {1, 2, 4, 6} mW, uniform 25 W activity.
/// Paper finding: the gradient is minimised near Pheater = 0.3 x PVCSEL.
///
/// Set PHOTHERM_FAST=1 for a reduced sweep.
#include <cstdlib>
#include <iostream>

#include "core/methodology.hpp"
#include "util/units.hpp"

int main() {
  using namespace photherm;
  const bool fast = std::getenv("PHOTHERM_FAST") != nullptr;

  core::OnocDesignSpec base;
  base.placement = core::OniPlacementMode::kAllTiles;
  base.activity = power::ActivityKind::kUniform;
  base.chip_power = 25.0;
  if (fast) {
    base.oni_cell_xy = 10e-6;
    base.global_cell_xy = 2e-3;
  }

  const std::vector<double> p_vcsel =
      fast ? std::vector<double>{2e-3, 6e-3} : std::vector<double>{1e-3, 2e-3, 4e-3, 6e-3};
  const std::vector<double> ratios =
      fast ? std::vector<double>{0.0, 0.3, 0.6}
           : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0};

  Table table({"PVCSEL (mW)", "Pheater (mW)", "ratio", "gradient (degC)", "ONI avg (degC)"});
  for (double pv : p_vcsel) {
    core::OnocDesignSpec spec = base;
    spec.p_vcsel = pv;
    const auto sweep = core::explore_heater_ratios(spec, ratios);
    for (const auto& point : sweep) {
      table.add_row({pv * 1e3, point.p_heater * 1e3, point.heater_ratio, point.gradient,
                     point.oni_average});
    }
    const auto& best = core::best_heater_point(sweep);
    std::cout << "PVCSEL = " << pv * 1e3 << " mW: smallest gradient " << best.gradient
              << " degC at Pheater = " << best.p_heater * 1e3
              << " mW (ratio " << best.heater_ratio << "; paper optimum ~0.3)\n";
  }
  std::cout << "\n";
  print_table(std::cout, "Fig. 9-b: gradient temperature vs Pheater and PVCSEL", table);
  return 0;
}
