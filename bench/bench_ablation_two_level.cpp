/// Ablation of the two-level solver (DESIGN.md): on a domain small enough
/// to also solve in one shot at device resolution, compare the two-level
/// result against the fine reference — accuracy of the Dirichlet-shell
/// approximation vs the cell-count saving that makes the full SCC sweeps
/// tractable.
#include <chrono>
#include <iostream>

#include "geometry/stack.hpp"
#include "thermal/two_level.hpp"
#include "util/csv.hpp"

using namespace photherm;

namespace {

geometry::Scene make_scene(double die, double hotspot_size) {
  geometry::Scene scene;
  geometry::LayerStackBuilder stack(die, die);
  stack.add_layer({"bulk", "silicon", 200e-6});
  stack.add_layer({"ox", "silicon_dioxide", 10e-6});
  stack.emit(scene);
  geometry::Block bg;
  bg.name = "background";
  bg.box = geometry::Box3::make({0, 0, 0}, {die, die, 30e-6});
  bg.material = scene.materials().id_of("silicon");
  bg.power = 1.5;
  scene.add(std::move(bg));
  geometry::Block hot;
  hot.name = "device";
  hot.box = geometry::Box3::make({die / 2 - hotspot_size / 2, die / 2 - hotspot_size / 2, 0},
                                 {die / 2 + hotspot_size / 2, die / 2 + hotspot_size / 2,
                                  30e-6});
  hot.material = scene.materials().id_of("silicon");
  hot.power = 20e-3;
  scene.add(std::move(hot));
  return scene;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main() {
  const double die = 3e-3;
  const double hotspot = 60e-6;
  const geometry::Scene scene = make_scene(die, hotspot);
  thermal::BoundarySet bcs;
  bcs[thermal::Face::kZMax] = thermal::FaceBc::convection(5e3, 37.0);

  const geometry::Box3 probe_box = geometry::Box3::make(
      {die / 2 - hotspot, die / 2 - hotspot, 0}, {die / 2 + hotspot, die / 2 + hotspot, 210e-6});

  Table table({"method", "cells", "peak T (degC)", "probe avg (degC)", "solve time (s)"});
  table.set_precision(5);

  double reference_peak = 0.0;
  double reference_avg = 0.0;
  {
    // One-shot fine reference: 15 um everywhere.
    mesh::MeshOptions fine;
    fine.default_max_cell_xy = 15e-6;
    const auto t0 = std::chrono::steady_clock::now();
    const auto mesh = mesh::RectilinearMesh::build(scene, fine);
    const auto field = thermal::solve_steady_state(mesh, bcs);
    reference_peak = field.global_max();
    reference_avg = field.average_in(probe_box);
    table.add_row({std::string("one-shot fine (reference)"),
                   static_cast<double>(field.mesh().cell_count()), reference_peak,
                   reference_avg, seconds_since(t0)});
  }
  {
    // Two-level: coarse 300 um global + 15 um window.
    thermal::TwoLevelOptions options;
    options.global_mesh.default_max_cell_xy = 300e-6;
    options.local_mesh.default_max_cell_xy = 15e-6;
    options.window_margin = 300e-6;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = thermal::solve_two_level(scene, bcs, probe_box, options);
    const double cells = static_cast<double>(result.global_field.mesh().cell_count() +
                                             result.local_field.mesh().cell_count());
    table.add_row({std::string("two-level (global+window)"), cells,
                   result.local_field.max_in(probe_box),
                   result.local_field.average_in(probe_box), seconds_since(t0)});
    std::cout << "peak error vs reference: "
              << std::abs(result.local_field.max_in(probe_box) - reference_peak) << " degC, "
              << "probe-average error: "
              << std::abs(result.local_field.average_in(probe_box) - reference_avg)
              << " degC\n";
  }
  {
    // Coarse-only, for contrast: what the global solve alone would report.
    mesh::MeshOptions coarse;
    coarse.default_max_cell_xy = 300e-6;
    const auto t0 = std::chrono::steady_clock::now();
    const auto field =
        thermal::solve_steady_state(mesh::RectilinearMesh::build(scene, coarse), bcs);
    table.add_row({std::string("coarse only"), static_cast<double>(field.mesh().cell_count()),
                   field.global_max(), field.average_in(probe_box), seconds_since(t0)});
  }

  print_table(std::cout, "Two-level solver ablation (device hotspot on a 3 mm die)", table);
  std::cout << "the two-level scheme recovers the fine peak at a fraction of the cells;\n"
               "the paper's 5 um ONI meshing inside the SCC package relies on this.\n";
  return 0;
}
