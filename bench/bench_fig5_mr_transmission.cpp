/// Reproduces Fig. 5-b: microring drop/through transmission vs the
/// misalignment between the signal wavelength and the MR resonance.
/// Anchors: 50 % drop at +-0.775 nm (half of the 1.55 nm BW3dB), most of
/// the power continuing to the through port beyond ~1.5 nm.
#include <iostream>

#include "core/tech.hpp"
#include "photonics/microring.hpp"
#include "util/units.hpp"

int main() {
  using namespace photherm;
  const auto model = core::make_snr_model();
  const photonics::MicroRing ring(model.microring);

  Table table({"detuning (nm)", "equivalent dT (degC)", "drop (% OPin)", "through (% OPin)"});
  table.set_precision(4);
  for (double detuning_nm = -3.0; detuning_nm <= 3.0001; detuning_nm += 0.25) {
    const double detuning = detuning_nm * units::nm;
    const double drop = ring.drop_fraction_detuned(detuning);
    table.add_row({detuning_nm, detuning_nm / (model.microring.dlambda_dt * 1e9),
                   drop * 100.0, (1.0 - drop) * 100.0});
  }
  print_table(std::cout, "Fig. 5-b: MR transmission vs wavelength misalignment", table);

  std::cout << "anchor: drop(0.775 nm) = " << ring.drop_fraction_detuned(0.775e-9) * 100
            << " % (paper: 50 % at a 7.75 degC temperature difference)\n"
            << "anchor: drop(1.55 nm)  = " << ring.drop_fraction_detuned(1.55e-9) * 100
            << " %\n";
  return 0;
}
