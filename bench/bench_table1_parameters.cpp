/// Reproduces Table 1 (technological parameters) plus the derived device
/// constants the rest of the harness consumes — a sanity anchor: if this
/// table diverges from the paper, every downstream figure will too.
#include <iostream>

#include "core/tech.hpp"
#include "photonics/microring.hpp"
#include "photonics/vcsel.hpp"
#include "util/units.hpp"

int main() {
  using namespace photherm;
  const core::TechnologyParameters tech;
  print_table(std::cout, "Table 1: technological parameters", core::technology_table(tech));

  const auto model = core::make_snr_model(tech);
  const photonics::MicroRing ring(model.microring);
  const photonics::Vcsel vcsel(model.vcsel);

  Table derived({"Derived quantity", "Value"});
  derived.set_precision(5);
  derived.add_row({std::string("PD sensitivity (mW)"),
                   dbm_to_watt(tech.pd_sensitivity_dbm) * 1e3});
  derived.add_row({std::string("MR 50% drop detuning (nm)"), 0.5 * tech.bandwidth_3db * 1e9});
  derived.add_row({std::string("dT for 50% wrong drop (degC)"),
                   0.5 * tech.bandwidth_3db / tech.thermal_sensitivity});
  derived.add_row({std::string("VCSEL wall-plug eff @5mA/40degC (%)"),
                   vcsel.wall_plug_efficiency(5e-3, 40.0) * 100.0});
  derived.add_row({std::string("VCSEL wall-plug eff @5mA/60degC (%)"),
                   vcsel.wall_plug_efficiency(5e-3, 60.0) * 100.0});
  derived.add_row({std::string("Drop fraction at 0.775 nm detuning"),
                   ring.drop_fraction_detuned(0.775e-9)});
  print_table(std::cout, "Derived device anchors (paper Sec. III-C / IV-C)", derived);

  std::cout << "Paper anchors: eta ~15% at 40 degC, ~4% at 60 degC; 50% drop at 0.775 nm\n";
  return 0;
}
