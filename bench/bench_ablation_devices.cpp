/// Device-option ablations on the SNR model (DESIGN.md): what the paper's
/// network would gain from (a) athermal MR cladding [9], (b) higher-order
/// ring filters, and (c) narrower ring passbands — all evaluated on the
/// 46.8 mm ring under the diagonal activity where thermal crosstalk bites.
#include <iostream>

#include "core/tech.hpp"
#include "noc/snr.hpp"
#include "util/csv.hpp"

int main() {
  using namespace photherm;

  // A fixed thermal scenario (from the Fig. 12 diagonal run): 12 ONIs with
  // a ~2.5 degC spread around 59 degC.
  const std::size_t nodes = 12;
  std::vector<double> temps;
  for (std::size_t i = 0; i < nodes; ++i) {
    temps.push_back(58.0 + 2.5 * 0.5 * (1.0 + std::sin(0.5 + 2.0 * 3.14159 *
                                                       static_cast<double>(i) /
                                                       static_cast<double>(nodes))));
  }
  const noc::RingTopology ring = noc::RingTopology::uniform(nodes, 46.8e-3);
  const noc::OrnocAssigner assigner(nodes, 4, 8);
  const auto comms = assigner.assign(noc::spread_requests(nodes, 3));

  struct Variant {
    const char* name;
    double athermal;
    bool locked_laser;  ///< wavelength-locked VCSEL (no thermal drift)
    int order;
    double bw;
  };
  const Variant variants[] = {
      {"paper baseline (order 1, 1.55 nm)", 1.0, false, 1, 1.55e-9},
      {"athermal rings only (ref [9])", 0.0, false, 1, 1.55e-9},
      {"athermal rings + locked lasers", 0.0, true, 1, 1.55e-9},
      {"half-compensated cladding", 0.5, false, 1, 1.55e-9},
      {"2nd-order filters", 1.0, false, 2, 1.55e-9},
      {"narrow rings (0.8 nm)", 1.0, false, 1, 0.8e-9},
      {"2nd-order + athermal + locked", 0.0, true, 2, 1.55e-9},
  };

  Table table({"variant", "worst SNR (dB)", "min signal (mW)", "max crosstalk (uW)"});
  for (const Variant& variant : variants) {
    noc::SnrModelConfig model = core::make_snr_model();
    model.microring.athermal_factor = variant.athermal;
    model.microring.filter_order = variant.order;
    model.microring.bandwidth_3db = variant.bw;
    if (variant.locked_laser) {
      model.vcsel.dlambda_dt = 0.0;
    }
    const noc::SnrAnalyzer analyzer(ring, model);
    const auto result = analyzer.analyze(comms, temps, noc::CommDrive{3.6e-3});
    table.add_row({std::string(variant.name), result.worst_snr_db,
                   result.min_signal_power * 1e3, result.max_crosstalk_power * 1e6});
  }
  print_table(std::cout,
              "Device ablations, 46.8 mm ring, diagonal-like thermal spread (~2.5 degC)",
              table);
  std::cout << "athermal rings only pay off with wavelength-stable sources: when the\n"
               "directly modulated VCSEL still drifts 0.1 nm/degC, freezing the rings\n"
               "*breaks* the common-mode tracking the paper's design relies on.\n";
  return 0;
}
