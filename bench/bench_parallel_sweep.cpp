/// Scaling curve of the parallel design-space sweep engine: runs the
/// Fig. 9-a style PVCSEL x Pchip grid at 1, 2, 4 and `util::concurrency()`
/// threads, reports wall-clock speedup, and verifies that every thread
/// count reproduces the serial results bit for bit (the determinism
/// contract of util/thread_pool.hpp).
///
/// Grid: 8 x 8 by default (64 independent steady-state solves);
/// PHOTHERM_FAST=1 shrinks it to 4 x 4 for smoke runs. Speedup is bounded
/// by the physical cores available — on a single-core host every thread
/// count degenerates to ~1x while results stay identical.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/design_space.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace photherm;
  using Clock = std::chrono::steady_clock;
  const bool fast = std::getenv("PHOTHERM_FAST") != nullptr;

  core::OnocDesignSpec spec;
  spec.placement = core::OniPlacementMode::kAllTiles;
  spec.activity = power::ActivityKind::kUniform;
  spec.heater_ratio = 0.0;
  // Fig. 9-a fast-mode resolution: each grid point is one coarse global
  // solve plus one fine ONI window solve.
  spec.oni_cell_xy = 10e-6;
  spec.global_cell_xy = 2e-3;

  const std::size_t axis = fast ? 4 : 8;
  const std::vector<double> p_chip = core::linspace(12.5, 31.25, axis);
  const std::vector<double> p_vcsel = core::linspace(0.0, 6e-3, axis);

  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (std::find(thread_counts.begin(), thread_counts.end(), util::concurrency()) ==
      thread_counts.end()) {
    thread_counts.push_back(util::concurrency());
  }

  std::cout << "parallel sweep scaling: " << axis << " x " << axis << " grid ("
            << axis * axis << " steady-state solves), hardware concurrency = "
            << util::concurrency() << "\n\n";

  Table table({"threads", "wall time (s)", "speedup vs 1 thread", "bit-identical"});
  std::vector<core::AvgTemperaturePoint> reference;
  double serial_seconds = 0.0;
  for (std::size_t threads : thread_counts) {
    core::SweepOptions sweep;
    sweep.threads = threads;
    const auto start = Clock::now();
    const auto result = core::sweep_vcsel_chip_power(spec, p_chip, p_vcsel, sweep);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

    bool identical = true;
    if (threads == 1) {
      reference = result;
      serial_seconds = seconds;
    } else {
      identical = result.size() == reference.size() &&
                  std::memcmp(result.data(), reference.data(),
                              result.size() * sizeof(core::AvgTemperaturePoint)) == 0;
    }
    table.add_row({static_cast<double>(threads), seconds,
                   seconds > 0.0 ? serial_seconds / seconds : 0.0,
                   std::string(identical ? "yes" : "NO")});
    if (!identical) {
      std::cerr << "FAIL: results at " << threads
                << " threads differ from the serial sweep\n";
      return 1;
    }
  }
  print_table(std::cout, "PVCSEL x Pchip sweep wall clock vs thread count", table);
  std::cout << "\nevery row reproduces the 1-thread results bit for bit; speedup tracks\n"
               "the physical cores available to this process\n";
  return 0;
}
