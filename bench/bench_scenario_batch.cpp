/// Throughput of the scenario batch runner with the coarse-solve cache off
/// vs on. The suite is the builtin "corners" suite (traffic patterns,
/// ambient corners, WDM ladder): the WDM-ladder scenarios differ only in
/// SNR knobs, so with the cache on they share one coarse global solve —
/// the ROADMAP's "share the coarse global solve across sweep points" item.
/// Verifies that cached results reproduce the cold solves bit for bit and
/// reports scenarios/sec plus the cache hit rate. PHOTHERM_FAST=1 drops to
/// the 4-scenario smoke suite.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "scenario/batch_runner.hpp"
#include "scenario/registry.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace photherm;
  using Clock = std::chrono::steady_clock;
  const bool fast = std::getenv("PHOTHERM_FAST") != nullptr;

  const std::string suite_name = fast ? "smoke" : "corners";
  auto suite = scenario::builtin_suite(suite_name);
  if (fast) {
    // The smoke suite's traffic patterns are all thermally distinct; append
    // a WDM ladder on the uniform scenario so the cache has shareable work.
    scenario::FamilySpec wdm;
    wdm.family = "wdm_ladder";
    wdm.base = suite.front();
    for (scenario::ScenarioSpec& s : scenario::expand_family(wdm)) {
      suite.push_back(std::move(s));
    }
  }
  std::cout << "scenario batch throughput: builtin:" << suite_name << " ("
            << suite.size() << " scenarios), " << util::concurrency() << " threads\n\n";

  Table table({"configuration", "wall time (s)", "scenarios/s", "global solves",
               "cache hits", "hit rate", "bit-identical"});

  // Reference: serial and cold. The other configurations must reproduce its
  // CSV bit for bit — across the cache dimension *and* the thread count.
  struct Config {
    const char* label;
    std::size_t threads;
    bool cached;
  };
  const Config configs[] = {
      {"1 thread, cache off", 1, false},
      {"N threads, cache off", 0, false},
      {"N threads, cache on", 0, true},
  };

  std::string reference_csv;
  std::size_t hits_with_cache = 0;
  for (const Config& config : configs) {
    scenario::BatchOptions options;
    options.threads = config.threads;
    options.share_global_solves = config.cached;
    const auto start = Clock::now();
    const scenario::BatchResult result = scenario::BatchRunner(options).run(suite);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

    const std::string csv = scenario::batch_table(suite, result).to_csv();
    if (reference_csv.empty()) {
      reference_csv = csv;
    }
    const bool identical = csv == reference_csv;
    if (config.cached) {
      hits_with_cache = result.stats.cache_hits;
    }
    const double n = static_cast<double>(suite.size());
    table.add_row({std::string(config.label), seconds, seconds > 0.0 ? n / seconds : 0.0,
                   static_cast<double>(result.stats.global_solves),
                   static_cast<double>(result.stats.cache_hits),
                   static_cast<double>(result.stats.cache_hits) / n,
                   std::string(identical ? "yes" : "NO")});
    if (!identical) {
      std::cerr << "FAIL: `" << config.label << "` differs from the serial cold run\n";
      return 1;
    }
  }
  if (hits_with_cache == 0) {
    std::cerr << "FAIL: the suite produced no shared-solve cache hits\n";
    return 1;
  }
  print_table(std::cout, "batch runner: thread counts x coarse-solve cache", table);
  std::cout << "\ncached coarse fields are bit-identical to cold solves; the speedup is\n"
               "the shared global solves plus whatever parallelism the cores allow\n";
  return 0;
}
