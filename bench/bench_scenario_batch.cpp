/// Throughput of the scenario batch runner with the coarse-solve cache off
/// vs on. The suite is the builtin "corners" suite (traffic patterns,
/// ambient corners, WDM ladder): the WDM-ladder scenarios differ only in
/// SNR knobs, so with the cache on they share one coarse global solve —
/// the ROADMAP's "share the coarse global solve across sweep points" item.
/// Verifies that cached results reproduce the cold solves bit for bit and
/// reports scenarios/sec plus the cache hit rate. PHOTHERM_FAST=1 drops to
/// the 4-scenario smoke suite.
///
/// `--benchmark_format=json` swaps the human table for Google-Benchmark-
/// shaped JSON (context + benchmarks array, one entry per configuration),
/// so the CI perf-artifact job can collect this plain binary alongside the
/// real gbench ones and photherm_report can diff the runs.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/batch_runner.hpp"
#include "scenario/registry.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace {

/// One gbench-shaped `benchmarks` entry per batch configuration: wall time
/// plus the cache economics as user counters. The deterministic counters
/// (global_solves, cache_hits, scenarios) are what the regression gate can
/// pin exactly; the rates are informational.
struct JsonRow {
  std::string name;
  double seconds = 0.0;
  double scenarios = 0.0;
  double global_solves = 0.0;
  double cache_hits = 0.0;
};

void emit_json(std::ostream& os, const std::vector<JsonRow>& rows) {
  using photherm::format_shortest;
  os << "{\n  \"context\": {\n"
     << "    \"executable\": \"bench_scenario_batch\",\n"
#ifdef NDEBUG
     << "    \"photherm_build_type\": \"release\"\n"
#else
     << "    \"photherm_build_type\": \"debug\"\n"
#endif
     << "  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& row = rows[i];
    os << "    {\n"
       << "      \"name\": \"" << row.name << "\",\n"
       << "      \"run_name\": \"" << row.name << "\",\n"
       << "      \"run_type\": \"iteration\",\n"
       << "      \"repetitions\": 1,\n"
       << "      \"iterations\": 1,\n"
       << "      \"real_time\": " << format_shortest(row.seconds) << ",\n"
       << "      \"cpu_time\": " << format_shortest(row.seconds) << ",\n"
       << "      \"time_unit\": \"s\",\n"
       << "      \"scenarios\": " << format_shortest(row.scenarios) << ",\n"
       << "      \"global_solves\": " << format_shortest(row.global_solves) << ",\n"
       << "      \"cache_hits\": " << format_shortest(row.cache_hits) << ",\n"
       << "      \"scenarios_per_second\": "
       << format_shortest(row.seconds > 0.0 ? row.scenarios / row.seconds : 0.0) << "\n"
       << "    }" << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace photherm;
  using Clock = std::chrono::steady_clock;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--benchmark_format=json") {
      json = true;
    } else {
      std::cerr << "bench_scenario_batch: unknown option `" << argv[i]
                << "` (supported: --benchmark_format=json)\n";
      return 2;
    }
  }
  const bool fast = std::getenv("PHOTHERM_FAST") != nullptr;

  const std::string suite_name = fast ? "smoke" : "corners";
  auto suite = scenario::builtin_suite(suite_name);
  if (fast) {
    // The smoke suite's traffic patterns are all thermally distinct; append
    // a WDM ladder on the uniform scenario so the cache has shareable work.
    scenario::FamilySpec wdm;
    wdm.family = "wdm_ladder";
    wdm.base = suite.front();
    for (scenario::ScenarioSpec& s : scenario::expand_family(wdm)) {
      suite.push_back(std::move(s));
    }
  }
  if (!json) {
    std::cout << "scenario batch throughput: builtin:" << suite_name << " ("
              << suite.size() << " scenarios), " << util::concurrency() << " threads\n\n";
  }

  Table table({"configuration", "wall time (s)", "scenarios/s", "global solves",
               "cache hits", "hit rate", "bit-identical"});

  // Reference: serial and cold. The other configurations must reproduce its
  // CSV bit for bit — across the cache dimension *and* the thread count.
  struct Config {
    const char* label;
    const char* bench_name;
    std::size_t threads;
    bool cached;
  };
  const Config configs[] = {
      {"1 thread, cache off", "scenario_batch/serial_cold", 1, false},
      {"N threads, cache off", "scenario_batch/threaded_cold", 0, false},
      {"N threads, cache on", "scenario_batch/threaded_cached", 0, true},
  };

  std::string reference_csv;
  std::size_t hits_with_cache = 0;
  std::vector<JsonRow> json_rows;
  for (const Config& config : configs) {
    scenario::BatchOptions options;
    options.threads = config.threads;
    options.share_global_solves = config.cached;
    const auto start = Clock::now();
    const scenario::BatchResult result = scenario::BatchRunner(options).run(suite);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

    const std::string csv = scenario::batch_table(suite, result).to_csv();
    if (reference_csv.empty()) {
      reference_csv = csv;
    }
    const bool identical = csv == reference_csv;
    if (config.cached) {
      hits_with_cache = result.stats.cache_hits;
    }
    const double n = static_cast<double>(suite.size());
    table.add_row({std::string(config.label), seconds, seconds > 0.0 ? n / seconds : 0.0,
                   static_cast<double>(result.stats.global_solves),
                   static_cast<double>(result.stats.cache_hits),
                   static_cast<double>(result.stats.cache_hits) / n,
                   std::string(identical ? "yes" : "NO")});
    JsonRow row;
    row.name = config.bench_name;
    row.seconds = seconds;
    row.scenarios = n;
    row.global_solves = static_cast<double>(result.stats.global_solves);
    row.cache_hits = static_cast<double>(result.stats.cache_hits);
    json_rows.push_back(std::move(row));
    if (!identical) {
      std::cerr << "FAIL: `" << config.label << "` differs from the serial cold run\n";
      return 1;
    }
  }
  if (hits_with_cache == 0) {
    std::cerr << "FAIL: the suite produced no shared-solve cache hits\n";
    return 1;
  }
  if (json) {
    emit_json(std::cout, json_rows);
    return 0;
  }
  print_table(std::cout, "batch runner: thread counts x coarse-solve cache", table);
  std::cout << "\ncached coarse fields are bit-identical to cold solves; the speedup is\n"
               "the shared global solves plus whatever parallelism the cores allow\n";
  return 0;
}
