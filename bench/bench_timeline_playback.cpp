/// Timeline playback throughput and the warm-start payoff: play the builtin
/// transient suite over a fixed horizon with the per-step CG solves seeded
/// from the previous state (the TransientSolver default) and from zero
/// (--cold-start equivalent), and report steps/sec plus the iteration
/// savings. The savings grow as the field approaches steady state — near
/// settle a warm-started step converges in a handful of iterations.
#include <chrono>
#include <iostream>

#include "scenario/registry.hpp"
#include "timeline/runner.hpp"
#include "util/csv.hpp"

using namespace photherm;

namespace {

struct Run {
  timeline::TimelineBatchResult result;
  double seconds = 0.0;
};

Run play(const std::vector<scenario::ScenarioSpec>& suite, bool warm_start) {
  timeline::TimelineBatchOptions options;
  options.playback.time_step = 0.2;
  options.playback.max_periods = 60;
  options.playback.stop_on_settle = false;  // equal horizons for both modes
  options.playback.warm_start = warm_start;
  const auto start = std::chrono::steady_clock::now();
  Run run;
  run.result = timeline::TimelineRunner(options).run(suite);
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return run;
}

}  // namespace

int main() {
  const std::vector<scenario::ScenarioSpec> suite = scenario::builtin_suite("transient");
  const Run warm = play(suite, true);
  const Run cold = play(suite, false);

  Table table({"mode", "steps", "CG iterations", "iters/step", "steps/sec"});
  const auto add = [&table](const char* mode, const Run& run) {
    const double steps = static_cast<double>(run.result.stats.total_steps);
    const double iters = static_cast<double>(run.result.stats.total_cg_iterations);
    table.add_row({std::string(mode), steps, iters, iters / steps,
                   steps / run.seconds});
  };
  add("warm start", warm);
  add("cold start", cold);
  print_table(std::cout, "timeline playback (builtin:transient, fixed 60-period horizon)", table);

  const double saved =
      1.0 - static_cast<double>(warm.result.stats.total_cg_iterations) /
                static_cast<double>(cold.result.stats.total_cg_iterations);
  std::cout << "warm-start saves " << saved * 100.0 << "% of the CG iterations on this "
            << "horizon (the margin widens near settle, where a warm step costs O(1) "
            << "iterations)\n";

  Table summary = timeline::timeline_summary_table(warm.result);
  summary.set_precision(6);
  print_table(std::cout, "per-scenario trace summary (warm start)", summary);
  return 0;
}
