/// Timeline playback throughput and the two big cost levers:
///
///  - the warm-start payoff: play the builtin transient suite over a fixed
///    horizon with the per-step CG solves seeded from the previous state
///    (the TransientSolver default) and from zero (--cold-start
///    equivalent), and report steps/sec plus the iteration savings — the
///    savings grow as the field approaches steady state;
///  - the adaptive-dt payoff: play the settle-bound builtin soak suite
///    until settle on the fixed grid and with adaptive stepping, and
///    report linear solves (steps), total CG iterations, steps/sec and
///    the matrix reassemblies the growth cost.
#include <chrono>
#include <iostream>

#include "scenario/registry.hpp"
#include "timeline/runner.hpp"
#include "util/csv.hpp"

using namespace photherm;

namespace {

struct Run {
  timeline::TimelineBatchResult result;
  double seconds = 0.0;
};

Run play(const std::vector<scenario::ScenarioSpec>& suite,
         const timeline::PlaybackOptions& playback) {
  timeline::TimelineBatchOptions options;
  options.playback = playback;
  const auto start = std::chrono::steady_clock::now();
  Run run;
  run.result = timeline::TimelineRunner(options).run(suite);
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return run;
}

void add_row(Table& table, const char* mode, const Run& run) {
  const double steps = static_cast<double>(run.result.stats.total_steps);
  const double iters = static_cast<double>(run.result.stats.total_cg_iterations);
  table.add_row({std::string(mode), steps, iters, iters / steps, steps / run.seconds});
}

}  // namespace

int main() {
  const std::vector<scenario::ScenarioSpec> suite = scenario::builtin_suite("transient");

  timeline::PlaybackOptions fixed_horizon;
  fixed_horizon.time_step = 0.2;
  fixed_horizon.max_periods = 60;
  fixed_horizon.stop_on_settle = false;  // equal horizons for both modes
  timeline::PlaybackOptions cold_start = fixed_horizon;
  cold_start.warm_start = false;

  const Run warm = play(suite, fixed_horizon);
  const Run cold = play(suite, cold_start);

  Table table({"mode", "steps", "CG iterations", "iters/step", "steps/sec"});
  add_row(table, "warm start", warm);
  add_row(table, "cold start", cold);
  print_table(std::cout, "timeline playback (builtin:transient, fixed 60-period horizon)", table);

  const double saved =
      1.0 - static_cast<double>(warm.result.stats.total_cg_iterations) /
                static_cast<double>(cold.result.stats.total_cg_iterations);
  std::cout << "warm-start saves " << saved * 100.0 << "% of the CG iterations on this "
            << "horizon (the margin widens near settle, where a warm step costs O(1) "
            << "iterations)\n";

  // Settle-bound horizon: the adaptive scheme grows the step while the
  // field crawls, so the same settled field costs a small, horizon-
  // independent number of linear solves (one per step).
  const std::vector<scenario::ScenarioSpec> soak = scenario::builtin_suite("soak");
  timeline::PlaybackOptions until_settle;
  until_settle.time_step = 0.2;
  until_settle.stop_on_settle = true;
  timeline::PlaybackOptions adaptive = until_settle;
  adaptive.adaptive = true;

  const Run fixed_run = play(soak, until_settle);
  const Run adaptive_run = play(soak, adaptive);

  Table soak_table({"mode", "steps", "CG iterations", "iters/step", "steps/sec"});
  add_row(soak_table, "fixed dt", fixed_run);
  add_row(soak_table, "adaptive dt", adaptive_run);
  print_table(std::cout, "settle-bound playback (builtin:soak, play until settle)", soak_table);

  std::size_t reassemblies = 0;
  for (const timeline::TimelineTrace& trace : adaptive_run.result.traces) {
    reassemblies += trace.stats.reassemblies;
  }
  const double solve_ratio = static_cast<double>(fixed_run.result.stats.total_steps) /
                             static_cast<double>(adaptive_run.result.stats.total_steps);
  const double iter_ratio =
      static_cast<double>(fixed_run.result.stats.total_cg_iterations) /
      static_cast<double>(adaptive_run.result.stats.total_cg_iterations);
  std::cout << "adaptive dt reaches the same settled field with " << solve_ratio
            << "x fewer linear solves (" << iter_ratio << "x fewer CG iterations), "
            << "paying " << reassemblies << " stepping-matrix reassemblies for the growth\n";

  Table summary = timeline::timeline_summary_table(adaptive_run.result);
  summary.set_precision(6);
  print_table(std::cout, "per-scenario trace summary (adaptive)", summary);
  return 0;
}
