/// Timeline playback throughput and the two big cost levers:
///
///  - the warm-start payoff: play the builtin transient suite over a fixed
///    horizon with the per-step CG solves seeded from the previous state
///    (the TransientSolver default) and from zero (--cold-start
///    equivalent), and report steps/sec plus the iteration savings — the
///    savings grow as the field approaches steady state;
///  - the adaptive-dt payoff: play the settle-bound builtin soak suite
///    until settle on the fixed grid and with adaptive stepping, and
///    report linear solves (steps), total CG iterations, steps/sec and
///    the matrix reassemblies the growth cost.
///
/// `--benchmark_format=json` swaps the human tables for Google-Benchmark-
/// shaped JSON (a `context` object and a `benchmarks` array with per-run
/// counters), so the CI perf-artifact job can collect this plain binary
/// alongside the real gbench ones.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "timeline/runner.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

using namespace photherm;

namespace {

struct Run {
  timeline::TimelineBatchResult result;
  double seconds = 0.0;
};

Run play(const std::vector<scenario::ScenarioSpec>& suite,
         const timeline::PlaybackOptions& playback) {
  timeline::TimelineBatchOptions options;
  options.playback = playback;
  const auto start = std::chrono::steady_clock::now();
  Run run;
  run.result = timeline::TimelineRunner(options).run(suite);
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return run;
}

void add_row(Table& table, const char* mode, const Run& run) {
  const double steps = static_cast<double>(run.result.stats.total_steps);
  const double iters = static_cast<double>(run.result.stats.total_cg_iterations);
  table.add_row({std::string(mode), steps, iters, iters / steps, steps / run.seconds});
}

/// One entry of the gbench-shaped `benchmarks` array: wall time plus the
/// playback counters as user counters, mirroring what google-benchmark
/// emits for a counter-carrying run.
void emit_json_benchmark(std::ostream& os, const char* name, const Run& run, bool last) {
  const double steps = static_cast<double>(run.result.stats.total_steps);
  const double iters = static_cast<double>(run.result.stats.total_cg_iterations);
  os << "    {\n"
     << "      \"name\": \"" << name << "\",\n"
     << "      \"run_name\": \"" << name << "\",\n"
     << "      \"run_type\": \"iteration\",\n"
     << "      \"repetitions\": 1,\n"
     << "      \"iterations\": 1,\n"
     << "      \"real_time\": " << format_shortest(run.seconds) << ",\n"
     << "      \"cpu_time\": " << format_shortest(run.seconds) << ",\n"
     << "      \"time_unit\": \"s\",\n"
     << "      \"steps\": " << format_shortest(steps) << ",\n"
     << "      \"cg_iterations\": " << format_shortest(iters) << ",\n"
     << "      \"iters_per_step\": " << format_shortest(iters / steps) << ",\n"
     << "      \"steps_per_second\": " << format_shortest(steps / run.seconds) << "\n"
     << "    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--benchmark_format=json") {
      json = true;
    } else {
      std::cerr << "bench_timeline_playback: unknown option `" << argv[i]
                << "` (supported: --benchmark_format=json)\n";
      return 2;
    }
  }

  const std::vector<scenario::ScenarioSpec> suite = scenario::builtin_suite("transient");

  timeline::PlaybackOptions fixed_horizon;
  fixed_horizon.time_step = 0.2;
  fixed_horizon.max_periods = 60;
  fixed_horizon.stop_on_settle = false;  // equal horizons for both modes
  timeline::PlaybackOptions cold_start = fixed_horizon;
  cold_start.warm_start = false;

  const Run warm = play(suite, fixed_horizon);
  const Run cold = play(suite, cold_start);

  // Settle-bound horizon: the adaptive scheme grows the step while the
  // field crawls, so the same settled field costs a small, horizon-
  // independent number of linear solves (one per step).
  const std::vector<scenario::ScenarioSpec> soak = scenario::builtin_suite("soak");
  timeline::PlaybackOptions until_settle;
  until_settle.time_step = 0.2;
  until_settle.stop_on_settle = true;
  timeline::PlaybackOptions adaptive = until_settle;
  adaptive.adaptive = true;

  const Run fixed_run = play(soak, until_settle);
  const Run adaptive_run = play(soak, adaptive);

  if (json) {
    // photherm_build_type is the build type of *this* binary (what
    // photherm_report's diff uses to refuse debug-vs-release comparisons),
    // as opposed to gbench's library_build_type which reports the library's
    // own build.
    std::cout << "{\n  \"context\": {\n"
              << "    \"executable\": \"bench_timeline_playback\",\n"
#ifdef NDEBUG
              << "    \"photherm_build_type\": \"release\"\n"
#else
              << "    \"photherm_build_type\": \"debug\"\n"
#endif
              << "  },\n  \"benchmarks\": [\n";
    emit_json_benchmark(std::cout, "timeline_playback/transient_warm_start", warm, false);
    emit_json_benchmark(std::cout, "timeline_playback/transient_cold_start", cold, false);
    emit_json_benchmark(std::cout, "timeline_playback/soak_fixed_dt", fixed_run, false);
    emit_json_benchmark(std::cout, "timeline_playback/soak_adaptive_dt", adaptive_run, true);
    std::cout << "  ]\n}\n";
    return 0;
  }

  Table table({"mode", "steps", "CG iterations", "iters/step", "steps/sec"});
  add_row(table, "warm start", warm);
  add_row(table, "cold start", cold);
  print_table(std::cout, "timeline playback (builtin:transient, fixed 60-period horizon)", table);

  const double saved =
      1.0 - static_cast<double>(warm.result.stats.total_cg_iterations) /
                static_cast<double>(cold.result.stats.total_cg_iterations);
  std::cout << "warm-start saves " << saved * 100.0 << "% of the CG iterations on this "
            << "horizon (the margin widens near settle, where a warm step costs O(1) "
            << "iterations)\n";

  Table soak_table({"mode", "steps", "CG iterations", "iters/step", "steps/sec"});
  add_row(soak_table, "fixed dt", fixed_run);
  add_row(soak_table, "adaptive dt", adaptive_run);
  print_table(std::cout, "settle-bound playback (builtin:soak, play until settle)", soak_table);

  std::size_t reassemblies = 0;
  for (const timeline::TimelineTrace& trace : adaptive_run.result.traces) {
    reassemblies += trace.stats.reassemblies;
  }
  const double solve_ratio = static_cast<double>(fixed_run.result.stats.total_steps) /
                             static_cast<double>(adaptive_run.result.stats.total_steps);
  const double iter_ratio =
      static_cast<double>(fixed_run.result.stats.total_cg_iterations) /
      static_cast<double>(adaptive_run.result.stats.total_cg_iterations);
  std::cout << "adaptive dt reaches the same settled field with " << solve_ratio
            << "x fewer linear solves (" << iter_ratio << "x fewer CG iterations), "
            << "paying " << reassemblies << " stepping-matrix reassemblies for the growth\n";

  Table summary = timeline::timeline_summary_table(adaptive_run.result);
  summary.set_precision(6);
  print_table(std::cout, "per-scenario trace summary (adaptive)", summary);
  return 0;
}
