/// Reproduces Fig. 9-a: ONI average temperature vs PVCSEL (0..6 mW per
/// laser) for chip activities Pchip in {12.5, 18.75, 25, 31.25} W, uniform
/// activity, MR heaters off, one ONI per tile (24 interfaces). The paper's
/// trends: ~+3.3 degC per +6.25 W of chip power and ~+11 degC from 0 to
/// 6 mW of PVCSEL.
///
/// Set PHOTHERM_FAST=1 for a reduced sweep (used by smoke runs).
#include <cstdlib>
#include <iostream>

#include "core/design_space.hpp"
#include "util/units.hpp"

int main() {
  using namespace photherm;
  const bool fast = std::getenv("PHOTHERM_FAST") != nullptr;

  core::OnocDesignSpec spec;
  spec.placement = core::OniPlacementMode::kAllTiles;
  spec.activity = power::ActivityKind::kUniform;
  spec.heater_ratio = 0.0;  // heaters explored in Fig. 9-b
  if (fast) {
    spec.oni_cell_xy = 10e-6;
    spec.global_cell_xy = 2e-3;
  }

  const std::vector<double> p_chip =
      fast ? std::vector<double>{12.5, 25.0} : std::vector<double>{12.5, 18.75, 25.0, 31.25};
  const std::vector<double> p_vcsel =
      fast ? std::vector<double>{0.0, 3e-3, 6e-3}
           : std::vector<double>{0.0, 1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3};

  const auto sweep = core::sweep_vcsel_chip_power(spec, p_chip, p_vcsel);

  Table table({"Pchip (W)", "PVCSEL (mW)", "ONI avg T (degC)", "gradient (degC)"});
  for (const auto& row : sweep) {
    table.add_row({row.p_chip, row.p_vcsel * 1e3, row.average, row.gradient});
  }
  print_table(std::cout, "Fig. 9-a: ONI average temperature vs PVCSEL and Pchip", table);

  // Paper-trend summary: sensitivity to chip power and to laser power.
  const auto at = [&](double chip, double vcsel) -> const core::AvgTemperaturePoint& {
    for (const auto& row : sweep) {
      if (row.p_chip == chip && row.p_vcsel == vcsel) {
        return row;
      }
    }
    throw Error("sweep point not found");
  };
  const double chip_lo = p_chip.front();
  const double chip_hi = p_chip.back();
  const double dv = p_vcsel.back();
  const double chip_slope =
      (at(chip_hi, 0.0).average - at(chip_lo, 0.0).average) / (chip_hi - chip_lo);
  const double vcsel_slope = (at(chip_lo, dv).average - at(chip_lo, 0.0).average) / (dv * 1e3);
  std::cout << "chip-power sensitivity: " << chip_slope << " degC/W (paper ~0.53 degC/W)\n"
            << "PVCSEL sensitivity:     " << vcsel_slope
            << " degC/mW (paper ~1.8 degC/mW: +11 degC over 6 mW)\n";
  return 0;
}
