/// Reproduces Fig. 10: ONI average and gradient temperature with and
/// without the MR heater (Pheater = 0.3 x PVCSEL) as PVCSEL sweeps 0..6 mW.
/// Paper: at 6 mW the heater cuts the gradient from 5.8 to 1.3 degC while
/// raising the average laser temperature by only ~0.8 degC.
///
/// Set PHOTHERM_FAST=1 for a reduced sweep.
#include <cstdlib>
#include <iostream>

#include "core/methodology.hpp"
#include "util/units.hpp"

int main() {
  using namespace photherm;
  const bool fast = std::getenv("PHOTHERM_FAST") != nullptr;

  core::OnocDesignSpec base;
  base.placement = core::OniPlacementMode::kAllTiles;
  base.activity = power::ActivityKind::kUniform;
  base.chip_power = 25.0;
  if (fast) {
    base.oni_cell_xy = 10e-6;
    base.global_cell_xy = 2e-3;
  }

  const std::vector<double> p_vcsel =
      fast ? std::vector<double>{1e-3, 6e-3}
           : std::vector<double>{1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3};

  Table table({"PVCSEL (mW)", "avg w/o heater", "grad w/o heater", "avg w/ heater",
               "grad w/ heater", "grad reduction", "avg increase"});
  for (double pv : p_vcsel) {
    core::OnocDesignSpec spec = base;
    spec.p_vcsel = pv;
    const auto without = core::explore_heater_ratios(spec, {0.0}).front();
    const auto with = core::explore_heater_ratios(spec, {0.3}).front();
    table.add_row({pv * 1e3, without.oni_average, without.gradient, with.oni_average,
                   with.gradient, without.gradient - with.gradient,
                   with.oni_average - without.oni_average});
  }
  print_table(std::cout, "Fig. 10: temperatures with and without the MR heater", table);
  std::cout << "Paper @6 mW: gradient 5.8 -> 1.3 degC (-4.5) for +0.8 degC average\n";
  return 0;
}
