/// Extension bench (Sec. II discussion): run-time MR calibration is paced
/// by *heating latency*. Using the transient solver, step an MR heater on
/// and report the ring's temperature settling — the time constant a
/// closed-loop calibration controller must respect.
#include <iostream>

#include "geometry/stack.hpp"
#include "thermal/transient.hpp"
#include "util/csv.hpp"

using namespace photherm;

int main() {
  // A 400 um silicon tile with a 10x10 um heater film on a ring volume.
  geometry::Scene scene;
  geometry::LayerStackBuilder stack(400e-6, 400e-6);
  stack.add_layer({"bulk", "silicon", 50e-6});
  stack.add_layer({"box", "silicon_dioxide", 2e-6});
  stack.add_layer({"device", "optical_matrix", 4e-6});
  stack.emit(scene);

  geometry::Block ring;
  ring.name = "mr";
  ring.box = geometry::Box3::make({195e-6, 195e-6, 52e-6}, {205e-6, 205e-6, 55.5e-6});
  ring.material = scene.materials().id_of("silicon");
  ring.kind = geometry::BlockKind::kMicroRing;
  scene.add(ring);

  geometry::Block heater;
  heater.name = "heater";
  heater.box = geometry::Box3::make({195e-6, 195e-6, 55.5e-6}, {205e-6, 205e-6, 56e-6});
  heater.material = scene.materials().id_of("copper");
  heater.power = 1e-3;  // 1 mW step
  heater.kind = geometry::BlockKind::kHeater;
  scene.add(heater);

  thermal::BoundarySet bcs;
  bcs[thermal::Face::kZMin] = thermal::FaceBc::dirichlet(50.0);  // die held at 50 degC

  mesh::MeshOptions options;
  options.default_max_cell_xy = 20e-6;
  mesh::RefinementBox refine;
  refine.box = geometry::Box3::make({170e-6, 170e-6, 50e-6}, {230e-6, 230e-6, 56e-6});
  refine.max_cell_xy = 5e-6;
  refine.max_cell_z = 1e-6;
  options.refinements.push_back(refine);
  auto mesh = std::make_shared<const mesh::RectilinearMesh>(
      mesh::RectilinearMesh::build(scene, options));

  // Steady state = final value; transient from a cold (uniform) start.
  const auto steady = thermal::solve_steady_state(mesh, bcs);
  const double t_final = steady.average_in(ring.box);

  thermal::TransientOptions topts;
  topts.time_step = 2e-6;  // 2 us steps
  thermal::TransientSolver solver(mesh, bcs, topts);
  solver.set_uniform_state(50.0);

  Table table({"time (us)", "MR temperature (degC)", "settled (%)"});
  table.set_precision(5);
  double t63 = -1.0;
  double t95 = -1.0;
  for (int step = 1; step <= 60; ++step) {
    const auto field = solver.step();
    const double t_mr = field.average_in(ring.box);
    const double settled = (t_mr - 50.0) / (t_final - 50.0) * 100.0;
    if (t63 < 0.0 && settled >= 63.2) {
      t63 = solver.time();
    }
    if (t95 < 0.0 && settled >= 95.0) {
      t95 = solver.time();
    }
    if (step <= 10 || step % 5 == 0) {
      table.add_row({solver.time() * 1e6, t_mr, settled});
    }
  }
  print_table(std::cout, "MR heater step response (1 mW step, die at 50 degC)", table);
  std::cout << "final (steady) MR rise: " << t_final - 50.0 << " degC per mW\n";
  if (t63 > 0.0) {
    std::cout << "thermal time constant (63%): " << t63 * 1e6 << " us\n";
  }
  if (t95 > 0.0) {
    std::cout << "95% settling: " << t95 * 1e6 << " us\n";
  }
  std::cout << "closed-loop MR calibration (Sec. II refs [12][16]) must bandwidth-limit\n"
               "to a fraction of this settling rate.\n";
  return 0;
}
