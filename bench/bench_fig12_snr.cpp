/// Reproduces Fig. 12: worst-case SNR and received signal/crosstalk powers
/// for the three ring cases of Fig. 11 (18 / 32.4 / 46.8 mm waveguides with
/// 4 / 8 / 12 ONIs) under uniform, diagonal and random chip activities.
/// PVCSEL = 3.6 mW, Pheater = 0.3 x PVCSEL (1.08 mW), Pchip = 24 W
/// (diagonal: 8+4+4+8 W quadrants).
///
/// Paper shape: SNR decreases with ring length; diagonal activity (larger
/// inter-ONI temperature spread) is worst, uniform best, random between.
///
/// Set PHOTHERM_FAST=1 for a reduced sweep.
#include <cstdlib>
#include <iostream>

#include "core/design_space.hpp"
#include "util/string_util.hpp"
#include "util/units.hpp"

int main() {
  using namespace photherm;
  const bool fast = std::getenv("PHOTHERM_FAST") != nullptr;

  core::OnocDesignSpec base;
  base.placement = core::OniPlacementMode::kRing;
  base.chip_power = 24.0;  // diagonal split: 8 + 4 + 4 + 8 W quadrants
  base.p_vcsel = 3.6e-3;
  base.heater_ratio = 0.30;
  base.seed = 7;
  if (fast) {
    base.oni_cell_xy = 10e-6;
    base.global_cell_xy = 2e-3;
  }

  const std::vector<int> cases = fast ? std::vector<int>{1, 3} : std::vector<int>{1, 2, 3};
  const std::vector<power::ActivityKind> activities = {power::ActivityKind::kUniform,
                                                       power::ActivityKind::kDiagonal,
                                                       power::ActivityKind::kRandom};

  const auto sweep = core::sweep_snr(base, cases, activities);

  Table table({"activity", "length (mm)", "ONIs", "ONI T range (degC)", "signal (mW)",
               "crosstalk (uW)", "worst SNR (dB)"});
  for (const auto& row : sweep) {
    const std::size_t count = row.ring_case == 1 ? 4 : (row.ring_case == 2 ? 8 : 12);
    table.add_row({power::to_string(row.activity), row.waveguide_length * 1e3,
                   static_cast<double>(count),
                   format_fixed(row.oni_t_min, 2) + " - " + format_fixed(row.oni_t_max, 2),
                   row.signal_power * 1e3, row.crosstalk_power * 1e6, row.worst_snr_db});
  }
  print_table(std::cout, "Fig. 12: worst-case SNR per ring length and activity", table);
  std::cout << "Paper values (18 / 32.4 / 46.8 mm): uniform 38/25/13 dB, "
               "diagonal 19/13/10 dB, random 20/17/12 dB\n";
  return 0;
}
