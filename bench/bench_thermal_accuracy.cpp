/// Validation bench standing in for the paper's "IcTherm vs COMSOL < 1 %"
/// check (Sec. IV-B): the FVM solver is compared against closed-form
/// solutions — a 1-D layered wall with convection, and mesh-refinement
/// convergence of a heated-block problem.
#include <iostream>

#include "geometry/stack.hpp"
#include "thermal/fvm.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace photherm;

namespace {

/// 1-D analytic: uniform heat flux q'' through layers k_i of thickness t_i
/// into a convective boundary h at ambient T_inf. Bottom-face temperature:
/// T = T_inf + q'' (1/h + sum t_i / k_i).
double analytic_wall_bottom(double flux, double h, double t_inf,
                            const std::vector<std::pair<double, double>>& layers) {
  double r = 1.0 / h;
  for (const auto& [thickness, k] : layers) {
    r += thickness / k;
  }
  return t_inf + flux * r;
}

}  // namespace

int main() {
  Table table({"case", "analytic (degC)", "FVM (degC)", "error (%)"});
  table.set_precision(6);

  // --- Case 1: three-layer wall, uniform volumetric heating in the bottom
  // slab, convection on top. The exact bottom temperature follows from the
  // 1-D resistance chain (+ the internal parabolic term of the heated slab).
  {
    const double a = 1e-3;  // 1 mm x 1 mm column
    geometry::Scene scene;
    geometry::LayerStackBuilder stack(a, a);
    stack.add_layer({"source", "silicon", 100e-6});
    stack.add_layer({"oxide", "silicon_dioxide", 50e-6});
    stack.add_layer({"lid", "copper", 500e-6});
    stack.emit(scene);

    const double power = 0.5;  // W
    geometry::Block heat;
    heat.name = "heat";
    heat.box = geometry::Box3::make({0, 0, 0}, {a, a, 100e-6});
    heat.material = scene.materials().id_of("silicon");
    heat.power = power;
    scene.add(std::move(heat));

    const double h = 1e4;
    const double t_inf = 25.0;
    thermal::BoundarySet bcs;
    bcs[thermal::Face::kZMax] = thermal::FaceBc::convection(h, t_inf);

    mesh::MeshOptions options;
    options.default_max_cell_xy = a;       // truly 1-D
    options.default_max_cell_z = 5e-6;
    auto field = thermal::solve_steady_state(
        mesh::RectilinearMesh::build(scene, options), bcs);

    const double flux = power / (a * a);
    // Heated slab: internal generation adds q''' L^2 / (2k) at the adiabatic
    // bottom relative to its top interface -> fold into the chain.
    const double k_si = scene.materials().get("silicon").conductivity;
    const double analytic =
        analytic_wall_bottom(flux, h, t_inf,
                             {{50e-6, scene.materials().get("silicon_dioxide").conductivity},
                              {500e-6, scene.materials().get("copper").conductivity}}) +
        flux * 100e-6 / (2.0 * k_si);
    const double fvm = field.at({a / 2, a / 2, 0.0});
    table.add_row({std::string("1-D layered wall, bottom T"), analytic, fvm,
                   100.0 * std::abs(fvm - analytic) / (analytic - t_inf)});
  }

  // --- Case 2: energy balance — boundary heat flow must equal the injected
  // power (discrete conservation, exact up to solver tolerance).
  {
    const double a = 2e-3;
    geometry::Scene scene;
    geometry::LayerStackBuilder stack(a, a);
    stack.add_layer({"die", "silicon", 300e-6});
    stack.emit(scene);
    geometry::Block heat;
    heat.name = "hotspot";
    heat.box = geometry::Box3::make({a / 4, a / 4, 0}, {a / 2, a / 2, 50e-6});
    heat.material = scene.materials().id_of("silicon");
    heat.power = 1.25;
    scene.add(std::move(heat));

    thermal::BoundarySet bcs;
    bcs[thermal::Face::kZMax] = thermal::FaceBc::convection(5e3, 30.0);
    bcs[thermal::Face::kZMin] = thermal::FaceBc::convection(200.0, 30.0);

    mesh::MeshOptions options;
    options.default_max_cell_xy = 50e-6;
    options.default_max_cell_z = 25e-6;
    auto field = thermal::solve_steady_state(
        mesh::RectilinearMesh::build(scene, options), bcs);
    const double outflow = thermal::boundary_heat_flow(field, bcs);
    table.add_row({std::string("energy balance, outflow vs 1.25 W"), 1.25, outflow,
                   100.0 * std::abs(outflow - 1.25) / 1.25});
  }

  // --- Case 3: mesh-refinement convergence of a hotspot peak temperature.
  {
    const double a = 2e-3;
    double prev = 0.0;
    std::vector<double> cells = {100e-6, 50e-6, 25e-6};
    std::vector<double> peaks;
    for (double cell : cells) {
      geometry::Scene scene;
      geometry::LayerStackBuilder stack(a, a);
      stack.add_layer({"die", "silicon", 300e-6});
      stack.emit(scene);
      geometry::Block heat;
      heat.name = "hotspot";
      heat.box = geometry::Box3::make({a / 2 - 200e-6, a / 2 - 200e-6, 0},
                                      {a / 2 + 200e-6, a / 2 + 200e-6, 50e-6});
      heat.material = scene.materials().id_of("silicon");
      heat.power = 1.0;
      scene.add(std::move(heat));
      thermal::BoundarySet bcs;
      bcs[thermal::Face::kZMax] = thermal::FaceBc::convection(5e3, 30.0);
      mesh::MeshOptions options;
      options.default_max_cell_xy = cell;
      options.default_max_cell_z = 25e-6;
      auto field = thermal::solve_steady_state(
          mesh::RectilinearMesh::build(scene, options), bcs);
      peaks.push_back(field.global_max());
      prev = peaks.back();
    }
    (void)prev;
    table.add_row({std::string("hotspot peak @100um vs @25um mesh"), peaks.back(),
                   peaks.front(),
                   100.0 * std::abs(peaks.front() - peaks.back()) / (peaks.back() - 30.0)});
  }

  print_table(std::cout, "Thermal solver validation (IcTherm/COMSOL stand-in)", table);
  std::cout << "paper: IcTherm max error < 1 % vs COMSOL; the analytic cases above play\n"
               "the reference role here (errors are relative to the ambient rise)\n";
  return 0;
}
