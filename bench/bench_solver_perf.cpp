/// Timing benchmarks (google-benchmark) of the numerical core: sparse
/// matrix-vector products, the preconditioned solvers and full FVM solves
/// at the resolutions the methodology uses.
#include <benchmark/benchmark.h>

#include "geometry/stack.hpp"
#include "math/solvers.hpp"
#include "thermal/fvm.hpp"

using namespace photherm;

namespace {

/// A silicon slab with a hotspot, meshed at `cell` resolution.
thermal::DiscreteSystem make_system(double cell, std::size_t* cells_out) {
  const double a = 2e-3;
  geometry::Scene scene;
  geometry::LayerStackBuilder stack(a, a);
  stack.add_layer({"die", "silicon", 300e-6});
  stack.emit(scene);
  geometry::Block heat;
  heat.name = "hotspot";
  heat.box = geometry::Box3::make({a / 4, a / 4, 0}, {a / 2, a / 2, 100e-6});
  heat.material = scene.materials().id_of("silicon");
  heat.power = 1.0;
  scene.add(std::move(heat));
  mesh::MeshOptions options;
  options.default_max_cell_xy = cell;
  options.default_max_cell_z = 50e-6;
  const auto mesh = mesh::RectilinearMesh::build(scene, options);
  if (cells_out != nullptr) {
    *cells_out = mesh.cell_count();
  }
  thermal::BoundarySet bcs;
  bcs[thermal::Face::kZMax] = thermal::FaceBc::convection(5e3, 30.0);
  return thermal::assemble(mesh, bcs);
}

void BM_SpMV(benchmark::State& state) {
  std::size_t cells = 0;
  const auto system = make_system(2e-3 / static_cast<double>(state.range(0)), &cells);
  math::Vector x(system.matrix.cols(), 1.0);
  math::Vector y(system.matrix.rows());
  for (auto _ : state) {
    system.matrix.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["cells"] = static_cast<double>(cells);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * system.matrix.nnz()));
}
BENCHMARK(BM_SpMV)->Arg(16)->Arg(32)->Arg(64);

void BM_CgIlu0(benchmark::State& state) {
  std::size_t cells = 0;
  const auto system = make_system(2e-3 / static_cast<double>(state.range(0)), &cells);
  for (auto _ : state) {
    math::Vector x;
    math::SolverOptions options;
    options.preconditioner = math::PreconditionerKind::kIlu0;
    const auto result = math::conjugate_gradient(system.matrix, system.rhs, x, options);
    benchmark::DoNotOptimize(result.iterations);
  }
  state.counters["cells"] = static_cast<double>(cells);
}
BENCHMARK(BM_CgIlu0)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_CgSsor(benchmark::State& state) {
  std::size_t cells = 0;
  const auto system = make_system(2e-3 / static_cast<double>(state.range(0)), &cells);
  for (auto _ : state) {
    math::Vector x;
    math::SolverOptions options;
    options.preconditioner = math::PreconditionerKind::kSsor;
    const auto result = math::conjugate_gradient(system.matrix, system.rhs, x, options);
    benchmark::DoNotOptimize(result.iterations);
  }
  state.counters["cells"] = static_cast<double>(cells);
}
BENCHMARK(BM_CgSsor)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_Assembly(benchmark::State& state) {
  const double a = 2e-3;
  geometry::Scene scene;
  geometry::LayerStackBuilder stack(a, a);
  stack.add_layer({"die", "silicon", 300e-6});
  stack.emit(scene);
  mesh::MeshOptions options;
  options.default_max_cell_xy = 2e-3 / static_cast<double>(state.range(0));
  options.default_max_cell_z = 50e-6;
  const auto mesh = mesh::RectilinearMesh::build(scene, options);
  thermal::BoundarySet bcs;
  bcs[thermal::Face::kZMax] = thermal::FaceBc::convection(5e3, 30.0);
  for (auto _ : state) {
    auto system = thermal::assemble(mesh, bcs);
    benchmark::DoNotOptimize(system.rhs.data());
  }
  state.counters["cells"] = static_cast<double>(mesh.cell_count());
}
BENCHMARK(BM_Assembly)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
