/// Timing benchmarks (google-benchmark) of the numerical core: sparse
/// matrix-vector products (CSR and matrix-free stencil), the preconditioned
/// solvers swept over preconditioner kind x operator kind, assembly, and the
/// transient hot path: repeated warm-started solves against a fixed stepping
/// operator, where the preconditioner caching and the Chebyshev rebuild
/// economics actually show up.
#include <benchmark/benchmark.h>

#include <string>

#include "geometry/stack.hpp"
#include "math/preconditioner.hpp"
#include "math/solvers.hpp"
#include "math/stencil_operator.hpp"
#include "thermal/fvm.hpp"

using namespace photherm;

namespace {

/// A silicon slab with a hotspot, meshed at `cell` resolution; both operator
/// forms assembled from the same mesh.
struct BenchSystems {
  thermal::DiscreteSystem csr;
  thermal::StencilSystem stencil;
  std::size_t cells = 0;
};

BenchSystems make_systems(double cell) {
  const double a = 2e-3;
  geometry::Scene scene;
  geometry::LayerStackBuilder stack(a, a);
  stack.add_layer({"die", "silicon", 300e-6});
  stack.emit(scene);
  geometry::Block heat;
  heat.name = "hotspot";
  heat.box = geometry::Box3::make({a / 4, a / 4, 0}, {a / 2, a / 2, 100e-6});
  heat.material = scene.materials().id_of("silicon");
  heat.power = 1.0;
  scene.add(std::move(heat));
  mesh::MeshOptions options;
  options.default_max_cell_xy = cell;
  options.default_max_cell_z = 50e-6;
  const auto mesh = mesh::RectilinearMesh::build(scene, options);
  thermal::BoundarySet bcs;
  bcs[thermal::Face::kZMax] = thermal::FaceBc::convection(5e3, 30.0);
  BenchSystems out{thermal::assemble(mesh, bcs), thermal::assemble_stencil(mesh, bcs),
                   mesh.cell_count()};
  return out;
}

void BM_SpMV(benchmark::State& state) {
  const auto systems = make_systems(2e-3 / static_cast<double>(state.range(0)));
  math::Vector x(systems.csr.matrix.cols(), 1.0);
  math::Vector y(systems.csr.matrix.rows());
  for (auto _ : state) {
    systems.csr.matrix.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["cells"] = static_cast<double>(systems.cells);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * systems.csr.matrix.nnz()));
}
BENCHMARK(BM_SpMV)->Arg(16)->Arg(32)->Arg(64);

void BM_SpMVStencil(benchmark::State& state) {
  const auto systems = make_systems(2e-3 / static_cast<double>(state.range(0)));
  math::Vector x(systems.stencil.op.cols(), 1.0);
  math::Vector y(systems.stencil.op.rows());
  for (auto _ : state) {
    systems.stencil.op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["cells"] = static_cast<double>(systems.cells);
  // Same nominal work as the CSR product on the same mesh.
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * systems.csr.matrix.nnz()));
}
BENCHMARK(BM_SpMVStencil)->Arg(16)->Arg(32)->Arg(64);

/// CG sweep: every preconditioner kind on both operator forms (SSOR and
/// ILU(0) need explicit sparsity, so they run on CSR only). The label names
/// the combination; counters report cells and iterations to convergence.
void BM_CgSweep(benchmark::State& state) {
  const auto kind = static_cast<math::PreconditionerKind>(state.range(1));
  const auto op_kind = static_cast<thermal::OperatorKind>(state.range(2));
  const auto systems = make_systems(2e-3 / static_cast<double>(state.range(0)));
  const math::LinearOperator& a =
      op_kind == thermal::OperatorKind::kStencil
          ? static_cast<const math::LinearOperator&>(systems.stencil.op)
          : systems.csr.matrix;
  std::size_t iterations = 0;
  for (auto _ : state) {
    math::Vector x;
    math::SolverOptions options;
    options.preconditioner = kind;
    const auto result = math::conjugate_gradient(a, systems.csr.rhs, x, options);
    iterations = result.iterations;
    benchmark::DoNotOptimize(result.iterations);
  }
  state.SetLabel(std::string(math::to_string(kind)) + "/" +
                 std::string(thermal::to_string(op_kind)));
  state.counters["cells"] = static_cast<double>(systems.cells);
  state.counters["iters"] = static_cast<double>(iterations);
}

void CgSweepArgs(benchmark::internal::Benchmark* b) {
  using math::PreconditionerKind;
  using thermal::OperatorKind;
  for (int64_t n : {32, 64}) {
    for (const PreconditionerKind kind :
         {PreconditionerKind::kIdentity, PreconditionerKind::kJacobi,
          PreconditionerKind::kSsor, PreconditionerKind::kIlu0,
          PreconditionerKind::kChebyshev}) {
      b->Args({n, static_cast<int64_t>(kind), static_cast<int64_t>(OperatorKind::kCsr)});
      if (kind != PreconditionerKind::kSsor && kind != PreconditionerKind::kIlu0) {
        b->Args(
            {n, static_cast<int64_t>(kind), static_cast<int64_t>(OperatorKind::kStencil)});
      }
    }
  }
}
BENCHMARK(BM_CgSweep)->Apply(CgSweepArgs)->Unit(benchmark::kMillisecond);

/// Chebyshev degree tuning on the stencil operator: higher degree buys fewer
/// CG iterations at more SpMVs per application. The sweet spot depends on
/// how SpMV-bound the iteration is.
void BM_CgChebyshevDegree(benchmark::State& state) {
  const auto systems = make_systems(2e-3 / static_cast<double>(state.range(0)));
  std::size_t iterations = 0;
  for (auto _ : state) {
    math::Vector x;
    math::SolverOptions options;
    options.preconditioner = math::PreconditionerKind::kChebyshev;
    options.chebyshev.degree = static_cast<int>(state.range(1));
    const auto result =
        math::conjugate_gradient(systems.stencil.op, systems.csr.rhs, x, options);
    iterations = result.iterations;
    benchmark::DoNotOptimize(result.iterations);
  }
  state.counters["cells"] = static_cast<double>(systems.cells);
  state.counters["iters"] = static_cast<double>(iterations);
}
BENCHMARK(BM_CgChebyshevDegree)
    ->ArgsProduct({{64}, {2, 4, 8, 12, 16}})
    ->Unit(benchmark::kMillisecond);

void BM_Assembly(benchmark::State& state) {
  const double a = 2e-3;
  geometry::Scene scene;
  geometry::LayerStackBuilder stack(a, a);
  stack.add_layer({"die", "silicon", 300e-6});
  stack.emit(scene);
  mesh::MeshOptions options;
  options.default_max_cell_xy = 2e-3 / static_cast<double>(state.range(0));
  options.default_max_cell_z = 50e-6;
  const auto mesh = mesh::RectilinearMesh::build(scene, options);
  thermal::BoundarySet bcs;
  bcs[thermal::Face::kZMax] = thermal::FaceBc::convection(5e3, 30.0);
  for (auto _ : state) {
    auto system = thermal::assemble(mesh, bcs);
    benchmark::DoNotOptimize(system.rhs.data());
  }
  state.counters["cells"] = static_cast<double>(mesh.cell_count());
}
BENCHMARK(BM_Assembly)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

/// The transient hot path in miniature: one fixed stepping operator
/// (A + C/dt), a sequence of warm-started solves whose rhs advances with the
/// state, exactly like backward-Euler stepping. Three configurations:
///   0  per-solve ILU(0) on CSR       -- the pre-fix behaviour (refactor
///                                       the preconditioner on every step)
///   1  cached ILU(0) on CSR          -- preconditioner built once
///   2  cached Chebyshev on stencil   -- the matrix-free fast path
void BM_RepeatedWarmSolve(benchmark::State& state) {
  constexpr int kSteps = 25;
  const int config = static_cast<int>(state.range(1));
  auto systems = make_systems(2e-3 / static_cast<double>(state.range(0)));
  const double dt = 5e-4;

  // Build the stepping operator once in stencil form, then export the exact
  // same matrix to CSR so every configuration solves the identical system.
  math::Vector shift = systems.stencil.capacitance;
  for (double& c : shift) {
    c /= dt;
  }
  math::StencilOperator7 stepping_stencil = systems.stencil.op;
  stepping_stencil.add_to_diagonal(shift);
  const math::CsrMatrix stepping_csr = stepping_stencil.to_csr();

  std::unique_ptr<math::Preconditioner> cached;
  if (config == 1) {
    cached = std::make_unique<math::Ilu0Preconditioner>(stepping_csr);
  } else if (config == 2) {
    cached = std::make_unique<math::ChebyshevPreconditioner>(stepping_stencil);
  }
  const math::LinearOperator& a =
      config == 2 ? static_cast<const math::LinearOperator&>(stepping_stencil)
                  : stepping_csr;

  const std::size_t n = stepping_csr.rows();
  std::size_t iterations = 0;
  for (auto _ : state) {
    math::Vector x(n, 30.0);
    math::Vector rhs(n);
    iterations = 0;
    for (int step = 0; step < kSteps; ++step) {
      for (std::size_t i = 0; i < n; ++i) {
        rhs[i] = systems.csr.rhs[i] + shift[i] * x[i];
      }
      math::SolverOptions options;
      math::SolverResult result;
      if (cached) {
        result = math::conjugate_gradient(a, rhs, x, *cached, options);
      } else {
        options.preconditioner = math::PreconditionerKind::kIlu0;
        result = math::conjugate_gradient(a, rhs, x, options);
      }
      iterations += result.iterations;
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetLabel(config == 0   ? "ilu0-per-solve/csr"
                 : config == 1 ? "ilu0-cached/csr"
                               : "chebyshev-cached/stencil");
  state.counters["cells"] = static_cast<double>(systems.cells);
  state.counters["iters"] = static_cast<double>(iterations);
}
BENCHMARK(BM_RepeatedWarmSolve)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the JSON context carries the build type of
// *this* binary. gbench's own `library_build_type` key describes how the
// benchmark library was compiled, which says nothing about our optimisation
// flags; photherm_report's diff prefers photherm_build_type when refusing
// debug-vs-release comparisons.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("photherm_build_type", "release");
#else
  benchmark::AddCustomContext("photherm_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
