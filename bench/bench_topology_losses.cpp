/// Reproduces the Sec. II / ref [20] comparison: worst-case and average
/// insertion loss of ORNoC vs the Matrix, lambda-router and Snake optical
/// crossbars. Paper claim: at 4x4 scale ORNoC reduces worst-case loss by
/// ~42.5 % and average loss by ~38 % on average across the alternatives.
#include <iostream>

#include "noc/baselines.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace photherm;
  const noc::CrossbarLossParams params;
  const std::vector<std::size_t> sizes = {4, 8, 16, 32};
  const std::vector<noc::CrossbarTopology> topologies = {
      noc::CrossbarTopology::kOrnoc, noc::CrossbarTopology::kMatrix,
      noc::CrossbarTopology::kLambdaRouter, noc::CrossbarTopology::kSnake};

  Table table({"nodes", "topology", "worst-case loss (dB)", "average loss (dB)"});
  for (std::size_t n : sizes) {
    for (const auto topology : topologies) {
      table.add_row({static_cast<double>(n), noc::to_string(topology),
                     noc::worst_case_loss_db(topology, n, params),
                     noc::average_loss_db(topology, n, params)});
    }
  }
  print_table(std::cout, "Insertion loss: ORNoC vs wavelength-routed crossbars", table);

  // Reduction summary at the paper's 4x4 (16-node) scale.
  const std::size_t n = 16;
  const double ornoc_worst = noc::worst_case_loss_db(noc::CrossbarTopology::kOrnoc, n, params);
  const double ornoc_avg = noc::average_loss_db(noc::CrossbarTopology::kOrnoc, n, params);
  double worst_reduction = 0.0;
  double avg_reduction = 0.0;
  for (const auto topology :
       {noc::CrossbarTopology::kMatrix, noc::CrossbarTopology::kLambdaRouter,
        noc::CrossbarTopology::kSnake}) {
    worst_reduction += 1.0 - ornoc_worst / noc::worst_case_loss_db(topology, n, params);
    avg_reduction += 1.0 - ornoc_avg / noc::average_loss_db(topology, n, params);
  }
  std::cout << "ORNoC reduction at 16 nodes vs the three crossbars (mean): worst-case "
            << format_fixed(100.0 * worst_reduction / 3.0, 1) << " % (paper ~42.5 %), average "
            << format_fixed(100.0 * avg_reduction / 3.0, 1) << " % (paper ~38 %)\n";
  return 0;
}
