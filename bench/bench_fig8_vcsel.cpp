/// Reproduces Fig. 8-b and Fig. 8-c: VCSEL wall-plug efficiency vs drive
/// current for device temperatures 10..70 degC, and emitted optical power
/// vs dissipated power PVCSEL (with local self-heating, which produces the
/// roll-over of the high-temperature curves).
#include <iostream>

#include "core/tech.hpp"
#include "photonics/vcsel.hpp"
#include "util/units.hpp"

int main() {
  using namespace photherm;
  const auto model = core::make_snr_model();
  const photonics::Vcsel vcsel(model.vcsel);

  {
    Table table({"IVCSEL (mA)", "10C", "20C", "30C", "40C", "50C", "60C", "70C"});
    table.set_precision(3);
    for (double i_ma = 1.0; i_ma <= 15.0001; i_ma += 1.0) {
      std::vector<TableCell> row{i_ma};
      for (double t = 10.0; t <= 70.0; t += 10.0) {
        row.push_back(vcsel.wall_plug_efficiency(i_ma * units::mA, t) * 100.0);
      }
      table.add_row(std::move(row));
    }
    print_table(std::cout, "Fig. 8-b: wall-plug efficiency (%) vs IVCSEL and temperature",
                table);
    std::cout << "paper anchors: ~15 % at 40 degC dropping to ~4 % at 60 degC\n\n";
  }

  {
    // Fig. 8-c: OPVCSEL vs PVCSEL. The x axis is the dissipated power; the
    // curves self-heat through the local thermal resistance (~1.8 K/mW, the
    // Fig. 9-a local sensitivity), which bends them over at high drive.
    const double r_th = 1.8e3;  // [K/W]
    Table table({"PVCSEL (mW)", "10C", "20C", "30C", "40C", "50C", "60C", "70C"});
    table.set_precision(3);
    for (double p_mw = 1.0; p_mw <= 20.0001; p_mw += 1.0) {
      std::vector<TableCell> row{p_mw};
      for (double t = 10.0; t <= 70.0; t += 10.0) {
        row.push_back(vcsel.output_power_for_dissipated(p_mw * units::mW, t, r_th) * 1e3);
      }
      table.add_row(std::move(row));
    }
    print_table(std::cout,
                "Fig. 8-c: emitted power OPVCSEL (mW) vs dissipated PVCSEL and base temperature",
                table);
    std::cout << "paper shape: monotone rise with roll-over, strongly derated at 60-70 degC\n";
  }
  return 0;
}
